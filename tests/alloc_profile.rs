//! Allocation-profile fence for the flat-arena `ViewTree` hot loops.
//!
//! A counting global allocator wraps `System` and tallies every
//! allocation/reallocation. The assertions pin the arena's allocation
//! discipline: constructing a star is O(1) allocations regardless of degree,
//! and the Algorithm 2 attachment performs O(1) heap allocations per
//! consumed provider tree *amortized* — never per spliced node. Before the
//! arena refactor every spliced internal node allocated its own `children`
//! vector, so these bounds are the regression fence for the CSR layout.
//!
//! Everything runs in one `#[test]` (the harness would otherwise interleave
//! allocations of concurrently running tests into the measured windows) and
//! on the sequential stage executor (worker threads would do the same).

#![cfg(target_has_atomic = "ptr")] // the counter is an atomic

use dgo::core::{local_prune_with, PruneScratch, StageExecutor, ViewTree};
use dgo::graph::generators::Family;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every heap acquisition (alloc, alloc_zeroed, and realloc — a
/// realloc may move, so it is an acquisition for this fence's purposes).
struct CountingAlloc;

static ACQUISITIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// GlobalAlloc contract obligation (layout validity, pointer provenance) is
// delegated unchanged to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same pointer/layout pair the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same pointer/layout/size triple the caller vouched for.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn measure<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ACQUISITIONS.load(Ordering::Relaxed);
    let result = f();
    (ACQUISITIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn attach_is_o1_allocations_per_consumed_tree() {
    // A mid-sized RingOfCliques instance: dense enough that provider trees
    // have real internal structure (every clique vertex sees its whole
    // block), the family the vtree benches use.
    let g = Family::RingOfCliques.generate(512, 7);
    let n = g.num_vertices();

    // --- Star construction: O(1) allocations per star, any degree. ---
    let (star_allocs, trees): (usize, Vec<ViewTree>) = measure(|| {
        let mut trees = Vec::with_capacity(n);
        for v in 0..n {
            trees.push(ViewTree::star(v, g.neighbors(v)));
        }
        trees
    });
    // Six columns per arena (the pool may be lazily absent for leaves-only
    // trees); anything per-node would blow far past this.
    assert!(
        star_allocs <= 8 * n + 16,
        "star construction allocated {star_allocs} times for {n} trees"
    );

    // --- Algorithm 2 attachment: splice every depth-1 leaf's provider. ---
    let leaf_plans: Vec<Vec<u32>> = trees
        .iter()
        .map(|t| t.leaves_at_depth(1).collect())
        .collect();
    let consumed: usize = leaf_plans.iter().map(Vec::len).sum();
    let mut total_spliced_nodes = 0usize;
    for (v, plan) in leaf_plans.iter().enumerate() {
        for &leaf in plan {
            total_spliced_nodes += trees[trees[v].vertex(leaf)].len() - 1;
        }
    }
    let (attach_allocs, attached): (usize, Vec<ViewTree>) = measure(|| {
        (0..n)
            .map(|v| {
                ViewTree::attached_with(&trees[v], &leaf_plans[v], |leaf| {
                    &trees[trees[v].vertex(leaf)]
                })
            })
            .collect()
    });
    assert!(consumed >= n, "fence needs real attachment volume");
    assert!(
        total_spliced_nodes >= 4 * consumed,
        "fence needs multi-node providers to distinguish per-node allocation"
    );
    // O(1) amortized per consumed provider tree: six column allocations per
    // *consumer* plus the collecting vector — nowhere near one per spliced
    // node (the pre-arena layout paid >= one per internal node, i.e. more
    // than `total_spliced_nodes / 2` here).
    assert!(
        attach_allocs <= 8 * n + 16,
        "attachment allocated {attach_allocs} times for {consumed} consumed trees \
         ({total_spliced_nodes} spliced nodes) — not O(1) per tree"
    );
    assert!(
        attach_allocs < total_spliced_nodes / 2,
        "attachment allocations ({attach_allocs}) scale with spliced nodes \
         ({total_spliced_nodes}): the per-node regression is back"
    );

    // --- LocalPrune through a reused scratch: allocations only for the
    // returned trees' own arenas (<= 6 columns each), not per node or per
    // scratch rebuild. ---
    let (prune_allocs, pruned): (usize, Vec<ViewTree>) = measure(|| {
        let mut scratch = PruneScratch::new();
        attached
            .iter()
            .map(|t| local_prune_with(t, 3, &mut scratch))
            .collect()
    });
    let scratch_warmup = 16; // the scratch's own buffers, acquired once
    assert!(
        prune_allocs <= 8 * n + scratch_warmup,
        "pruning allocated {prune_allocs} times for {n} trees"
    );
    assert_eq!(pruned.len(), n);

    // Sanity: the batch entry point (sequential executor) stays within the
    // same discipline — one scratch per worker, O(1) per materialized tree.
    let stage = StageExecutor::sequential();
    let (batch_allocs, batch) = measure(|| dgo::core::local_prune_batch(&attached, 3, &stage));
    assert!(
        batch_allocs <= 10 * n + scratch_warmup,
        "batch pruning allocated {batch_allocs} times for {n} trees"
    );
    assert_eq!(batch.len(), n);
}
