//! Cross-algorithm comparisons: the paper's algorithm against the baselines
//! it is measured against in §1.2 — quality and round-count shape.

use dgo::core::{estimate_lambda, orient, Params};
use dgo::graph::generators::{gnm, Family};
use dgo::local::{be08_peeling, direct_peeling_mpc, RoundModel};
use dgo::mpc::ClusterConfig;

#[test]
fn be08_wins_on_outdegree_we_win_on_rounds_shape() {
    // The paper's §1.3 Discussion: our outdegree is worse by O(log log n),
    // but the round complexity breaks the Θ(log n) simulation barrier.
    let n = 8192;
    let g = gnm(n, 4 * n, 17);
    let params = Params::practical(n);
    let lambda = estimate_lambda(&g, &params).max(1);

    let ours = orient(&g, &params).unwrap();
    let be08 = be08_peeling(&g, lambda, 0.5, 0);
    let be08_out = be08.orientation(&g).unwrap().max_out_degree();

    // BE08's outdegree is at most (2.5)λ̂ (+ceil); ours may exceed it...
    assert!(be08_out <= (2.5 * lambda as f64).ceil() as usize);
    // ...but never by more than the log log n factor (with constant slack).
    let loglog = (n as f64).log2().log2();
    assert!(
        ours.orientation.max_out_degree() as f64 <= 8.0 * lambda as f64 * loglog,
        "ours = {} vs λ̂ = {lambda}",
        ours.orientation.max_out_degree()
    );
}

#[test]
fn round_scaling_direct_grows_ours_flattens() {
    // Measured E1 shape on trees (the workload where peeling takes its full
    // Θ(log n) course at a tight threshold): direct simulation rounds grow
    // with log n; ours stay near-flat across a 64x size increase.
    use dgo::graph::generators::random_tree;
    let params = Params::practical(0);
    let mut ours_rounds = Vec::new();
    let mut direct_rounds = Vec::new();
    for &n in &[1024usize, 8192, 65536] {
        let g = random_tree(n, 3);
        let r = orient(&g, &params).unwrap();
        ours_rounds.push(r.metrics.rounds);
        let cfg = ClusterConfig::for_graph(n, n - 1, 0.5);
        let d = direct_peeling_mpc(&g, 1, 0.0, cfg).unwrap();
        direct_rounds.push(d.metrics.rounds);
    }
    // Direct baseline grows measurably from 1k to 64k.
    assert!(
        direct_rounds[2] > direct_rounds[0],
        "direct baseline should grow: {direct_rounds:?}"
    );
    // Ours grows by far less than the instance-size factor (64x):
    // poly(log log n) flatness.
    assert!(
        ours_rounds[2] < 3 * ours_rounds[0].max(8),
        "our rounds should stay near-flat: {ours_rounds:?}"
    );
}

#[test]
fn analytic_models_agree_with_paper_ordering() {
    // At asymptotic sizes the model curves must order as the paper states:
    // ours < GLM19 < direct.
    let n = 1usize << 44;
    assert!(RoundModel::predict_ours(n) < RoundModel::predict_glm19(n));
    assert!(RoundModel::predict_glm19(n) < RoundModel::predict_direct(n));
}

#[test]
fn direct_baseline_matches_local_artifact_everywhere() {
    // The MPC baseline must compute exactly the LOCAL peeling's H-partition.
    for family in [Family::SparseGnm, Family::Tree, Family::Grid] {
        let g = family.generate(2000, 7);
        let cfg = ClusterConfig::for_graph(g.num_vertices(), g.num_edges(), 0.6);
        let mpc = direct_peeling_mpc(&g, 4, 0.5, cfg).unwrap();
        let local = be08_peeling(&g, 4, 0.5, 0);
        assert_eq!(mpc.layering, local.layering, "{family}");
    }
}
