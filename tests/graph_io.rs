//! Integration test: persist a workload, reload it, and get identical
//! algorithm outputs — the reproducibility path a downstream user of the
//! library would take with on-disk datasets.

use dgo::core::{orient, Params};
use dgo::graph::generators::Family;
use dgo::graph::io::{read_edge_list, write_edge_list};

#[test]
fn persisted_graphs_reproduce_results() {
    for family in [Family::SparseGnm, Family::PowerLaw, Family::Grid] {
        let g = family.generate(600, 21);
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let reloaded = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(g, reloaded, "{family}: roundtrip changed the graph");

        let params = Params::practical(600);
        let a = orient(&g, &params).unwrap();
        let b = orient(&reloaded, &params).unwrap();
        assert_eq!(
            a.orientation.max_out_degree(),
            b.orientation.max_out_degree(),
            "{family}: results differ after roundtrip"
        );
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }
}

#[test]
fn snap_style_header_parsing() {
    let text = "# Directed graph (each unordered pair of nodes is saved once)\n\
                # nodes: 6\n\
                # edges: 3\n\
                0\t1\n2\t3\n4\t5\n";
    let g = read_edge_list(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 6);
    assert_eq!(g.num_edges(), 3);
}

#[test]
fn real_snap_header_roundtrips_with_trailing_isolated_vertices() {
    // The header form real SNAP dumps use: capitalized `Nodes:` with the
    // edge count trailing on the same comment line. Vertices 7, 8, 9 have no
    // edges, so without the declared count they would be silently dropped.
    let text = "# Undirected graph: example.txt\n\
                # Nodes: 10 Edges: 3\n\
                0\t1\n2\t3\n4\t5\n";
    let g = read_edge_list(text.as_bytes()).unwrap();
    assert_eq!(
        g.num_vertices(),
        10,
        "declared count must win over max id+1"
    );
    assert_eq!(g.num_edges(), 3);

    // Round-trip: the writer emits the same SNAP header form, and the reload
    // preserves the trailing isolated vertices and the edge set exactly.
    let mut buffer = Vec::new();
    write_edge_list(&g, &mut buffer).unwrap();
    let text = String::from_utf8(buffer.clone()).unwrap();
    assert!(text.starts_with("# Nodes: 10 Edges: 3\n"), "got: {text:?}");
    let back = read_edge_list(buffer.as_slice()).unwrap();
    assert_eq!(g, back, "SNAP round-trip changed the graph");
}

#[test]
fn undershooting_declared_count_pinpoints_the_line() {
    let text = "# Nodes: 4 Edges: 2\n0 1\n2 7\n";
    let err = read_edge_list(text.as_bytes()).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("vertex 7"), "got: {message}");
    assert!(message.contains("line 3"), "got: {message}");
}
