//! Property-based tests (proptest) over the paper's structural invariants.
//!
//! Each property corresponds to a numbered claim:
//! * Claim 2.3 — min-combination preserves partial-layer validity.
//! * Claim 3.1 — pruning increases missing counts by at most k.
//! * Claims 3.3/3.4 — exponentiation preserves valid mappings within budget.
//! * Claim 3.12 — Algorithm 4's out-degree cap.
//! * Lemma 2.4 — path-count double counting and the `n·d^L` bound.
//! * Generators — structural invariants of every workload family.

use dgo::core::{
    exponentiate_and_prune, local_prune, num_paths_in, num_paths_out, partial_layer_assignment,
    partition_edges, partition_vertices, Params, ViewTree,
};
use dgo::graph::generators::{gnm, random_forest, random_tree};
use dgo::graph::{Graph, LayerAssignment, UNASSIGNED};
use dgo::local::be08_peeling;
use dgo::mpc::{Cluster, ClusterConfig};
use proptest::prelude::*;

/// Strategy: a random graph with 2..=60 vertices and moderate density.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..60, 0usize..150, any::<u64>())
        .prop_map(|(n, m, seed)| gnm(n, m.min(n * (n - 1) / 2), seed))
}

/// A seed-derived pseudo-random partial layering over `n` vertices.
fn derived_layering(n: usize, seed: u64) -> LayerAssignment {
    let layers: Vec<u32> = (0..n as u64)
        .map(|v| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(v)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            match h % 7 {
                6 => UNASSIGNED,
                x => x as u32 + 1,
            }
        })
        .collect();
    LayerAssignment::new(layers).expect("1-based layers")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn claim_2_3_min_combination_preserves_validity(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let n = g.num_vertices();
        let la = derived_layering(n, seed);
        let lb = {
            // A second, structurally different layering: BE08 peeling.
            let peel = be08_peeling(&g, 2 + (seed % 3) as usize, 0.5, 0);
            peel.layering
        };
        let da = la.out_degree_bound(&g).unwrap();
        let db = lb.out_degree_bound(&g).unwrap();
        let d = da.max(db);
        let combined = la.combine_min(&lb).unwrap();
        prop_assert!(combined.out_degree_bound(&g).unwrap() <= d);
    }

    #[test]
    fn claim_3_1_prune_missing_increase_bounded(
        g in arb_graph(),
        k in 1usize..5,
        root in 0usize..60,
    ) {
        let root = root % g.num_vertices();
        let t = ViewTree::star(root, g.neighbors(root));
        let p = local_prune(&t, k);
        p.assert_valid(&g);
        // Root missing grows by at most k... unless the root collapsed to a
        // singleton, in which case missing = deg(root) trivially.
        let before = t.missing_count(ViewTree::ROOT, &g);
        let after = p.missing_count(ViewTree::ROOT, &g);
        if p.len() > 1 {
            prop_assert!(after <= before + k);
        }
        prop_assert!(p.len() <= t.len());
    }

    #[test]
    fn claims_3_3_and_3_4_exponentiation_invariants(
        g in arb_graph(),
        k in 1usize..4,
        steps in 0u32..4,
    ) {
        let budget = 64usize;
        let mut cluster = Cluster::new(ClusterConfig::new(512, 4096));
        let r = exponentiate_and_prune(&g, budget, k, steps, &mut cluster).unwrap();
        for (v, t) in r.trees.iter().enumerate() {
            t.assert_valid(&g);                 // Claim 3.3
            prop_assert!(t.len() <= budget);    // Claim 3.4
            prop_assert_eq!(t.root_vertex(), v);
        }
    }

    #[test]
    fn claim_3_12_partial_assignment_outdegree(
        g in arb_graph(),
        k in 1usize..4,
        layers in 1u32..5,
        steps in 1u32..4,
    ) {
        let mut cluster = Cluster::new(ClusterConfig::new(512, 4096));
        let r = partial_layer_assignment(&g, 64, k, layers, steps, &mut cluster).unwrap();
        let cap = (steps as usize + 1) * k;
        prop_assert!(r.layering.out_degree_bound(&g).unwrap() <= cap);
    }

    #[test]
    fn lemma_2_4_double_counting(g in arb_graph(), t in 2usize..6) {
        let peel = be08_peeling(&g, t, 0.5, 0);
        let la = peel.layering;
        prop_assume!(la.is_complete());
        let sum_in: u64 = num_paths_in(&g, &la).iter().sum();
        let sum_out: u64 = num_paths_out(&g, &la).iter().sum();
        prop_assert_eq!(sum_in, sum_out);
        let d = la.out_degree_bound(&g).unwrap();
        let layers = la.max_layer().unwrap();
        prop_assert!(sum_out <= dgo::core::lemma_2_4_bound(g.num_vertices(), d, layers));
    }

    #[test]
    fn lemma_2_1_edge_partition_is_a_partition(
        g in arb_graph(),
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let pieces = partition_edges(&g, parts, seed);
        prop_assert_eq!(pieces.len(), parts);
        let total: usize = pieces.iter().map(|p| p.num_edges()).sum();
        prop_assert_eq!(total, g.num_edges());
        for p in &pieces {
            for (u, v) in p.edges() {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn lemma_2_2_vertex_partition_is_a_partition(
        g in arb_graph(),
        parts in 1usize..5,
        seed in any::<u64>(),
    ) {
        let pieces = partition_vertices(&g, parts, seed);
        let covered: usize = pieces.iter().map(|p| p.mapping.len()).sum();
        prop_assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn forests_are_forests(n in 2usize..200, trees in 1usize..8, seed in any::<u64>()) {
        let f = random_forest(n, trees, seed);
        prop_assert!(f.is_forest());
        prop_assert_eq!(f.num_vertices(), n);
    }

    #[test]
    fn trees_are_connected(n in 2usize..200, seed in any::<u64>()) {
        let t = random_tree(n, seed);
        prop_assert!(t.is_forest());
        prop_assert_eq!(t.connected_components(), 1);
        prop_assert_eq!(t.num_edges(), n - 1);
    }

    #[test]
    fn end_to_end_orientation_always_valid(g in arb_graph()) {
        let params = Params::practical(g.num_vertices());
        let r = dgo::core::orient(&g, &params).unwrap();
        prop_assert!(r.orientation.validate(&g).is_ok());
    }

    #[test]
    fn end_to_end_coloring_always_proper(g in arb_graph()) {
        let params = Params::practical(g.num_vertices());
        let r = dgo::core::color(&g, &params).unwrap();
        prop_assert!(r.coloring.validate(&g).is_ok());
    }
}
