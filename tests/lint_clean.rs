//! The workspace-clean lint gate: `cargo test` fails if any source file
//! violates an invariant from `lint.toml` (see `crates/lint` and the
//! README's "Static analysis" section).

use std::path::Path;

/// The workspace root — this integration test lives in the root package.
fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let config = dgo_lint::load_config(&root().join("lint.toml")).expect("lint.toml parses");
    let report = dgo_lint::lint_workspace(root(), &config).expect("workspace walk succeeds");
    assert!(
        report
            .files
            .iter()
            .any(|f| f == "crates/core/src/orient.rs"),
        "the walk must actually cover the workspace (saw {} files)",
        report.files.len()
    );
    assert!(
        report.is_clean(),
        "dgo-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Seeding a single violation must trip the gate: the checked-in config is
/// run against a synthetic dgo_core source containing a `HashMap`, which
/// rule R4 must flag. This pins the config's scopes — if someone narrows
/// `lint.toml` until nothing is covered, this test fails first.
#[test]
fn seeded_violation_trips_the_gate() {
    let config = dgo_lint::load_config(&root().join("lint.toml")).expect("lint.toml parses");
    let seeded = "use std::collections::HashMap;\nfn f(m: &HashMap<u64, u64>) {}\n";
    let diags = dgo_lint::rules::lint_source("crates/core/src/seeded.rs", seeded, &config)
        .expect("rules known");
    assert!(
        diags.iter().any(|d| d.rule == "R4"),
        "a HashMap in dgo_core must fail the gate, got: {diags:?}"
    );
    // And every rule of the checked-in config is implemented and enabled.
    for id in dgo_lint::rules::KNOWN_RULES {
        let rule = config
            .rule(id)
            .unwrap_or_else(|| panic!("{id} missing from lint.toml"));
        assert!(rule.enabled, "{id} must stay enabled");
    }
}
