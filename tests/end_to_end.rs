//! End-to-end integration tests: Theorems 1.1 and 1.2 across every workload
//! family, validated against the graph substrate's ground truth.

use dgo::core::{color, estimate_lambda, orient, Params};
use dgo::graph::generators::Family;

const N: usize = 1200;
const SEED: u64 = 99;

#[test]
fn orientation_valid_on_every_family() {
    for family in Family::ALL {
        let g = family.generate(N, SEED);
        let params = Params::practical(N);
        let r = orient(&g, &params).unwrap_or_else(|e| panic!("{family}: orientation failed: {e}"));
        r.orientation
            .validate(&g)
            .unwrap_or_else(|e| panic!("{family}: invalid orientation: {e}"));
        assert_eq!(r.orientation.num_edges(), g.num_edges(), "{family}");
    }
}

#[test]
fn orientation_outdegree_within_lambda_loglog_budget() {
    let loglog = (N as f64).log2().log2();
    for family in Family::ALL {
        let g = family.generate(N, SEED);
        let params = Params::practical(N);
        let lambda = estimate_lambda(&g, &params).max(1);
        let r = orient(&g, &params).unwrap();
        let d = r.orientation.max_out_degree();
        // O(λ log log n) with a generous constant (and slack for the
        // multi-part large-λ path, which sums per-part outdegrees).
        let budget = (12.0 * lambda as f64 * loglog).ceil() as usize * r.parts.max(1);
        assert!(
            d <= budget,
            "{family}: outdegree {d} exceeds budget {budget} (λ̂ = {lambda})"
        );
    }
}

#[test]
fn coloring_proper_on_every_family() {
    for family in Family::ALL {
        let g = family.generate(N, SEED);
        let params = Params::practical(N);
        let r = color(&g, &params).unwrap_or_else(|e| panic!("{family}: coloring failed: {e}"));
        r.coloring
            .validate(&g)
            .unwrap_or_else(|e| panic!("{family}: improper coloring: {e}"));
    }
}

#[test]
fn coloring_beats_delta_on_skewed_families() {
    for family in [Family::Star, Family::PowerLaw] {
        let g = family.generate(4000, SEED);
        let params = Params::practical(4000);
        let r = color(&g, &params).unwrap();
        r.coloring.validate(&g).unwrap();
        assert!(
            r.coloring.num_colors() * 4 < g.max_degree() + 1,
            "{family}: {} colors vs Δ+1 = {}",
            r.coloring.num_colors(),
            g.max_degree() + 1
        );
    }
}

#[test]
fn layering_induces_the_orientation() {
    let g = Family::SparseGnm.generate(N, SEED);
    let params = Params::practical(N);
    let r = orient(&g, &params).unwrap();
    let layering = r.layering.expect("single-part path keeps the layering");
    let reoriented = layering.to_orientation(&g).unwrap();
    assert_eq!(reoriented.max_out_degree(), r.orientation.max_out_degree());
}

#[test]
fn seeded_determinism_across_pipeline() {
    let g = Family::PowerLaw.generate(N, SEED);
    let params = Params::practical(N);
    let a = orient(&g, &params).unwrap();
    let b = orient(&g, &params).unwrap();
    assert_eq!(
        a.orientation.max_out_degree(),
        b.orientation.max_out_degree()
    );
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    let ca = color(&g, &params).unwrap();
    let cb = color(&g, &params).unwrap();
    assert_eq!(ca.coloring, cb.coloring);
}
