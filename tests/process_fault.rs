//! Chaos suite for the fault-tolerant multi-process backend.
//!
//! Every test drives [`ProcessBackend`] through deterministic injected
//! faults — worker kills, response delays, truncated frames, corrupted
//! frames — at exact `(exchange, worker, phase)` coordinates, and holds it
//! to the robustness contract:
//!
//! * faults within the retry budget are **recovered**: results and metrics
//!   stay bit-identical to [`SequentialBackend`];
//! * faults beyond the budget surface as **typed errors**
//!   ([`MpcError::WorkerCrashed`] / [`MpcError::WorkerTimeout`] /
//!   [`MpcError::Protocol`]) — never a hang, never a panic;
//! * no worker process outlives its backend (no orphans, no zombies).
//!
//! Tests are serialized on one lock: fault plans and worker counts travel
//! through process-wide defaults, and the orphan scan inspects this
//! process's children.

use dgo::core::{color_on, complete_layering_in, layering_config, orient_on, Params};
use dgo::graph::generators::gnm;
use dgo::mpc::{ClusterConfig, ExecutionBackend, MpcError, ProcessBackend, SequentialBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard, PoisonError};

mod common;

/// Serializes the whole suite (process-wide defaults + child-process scans).
static CHAOS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    common::ensure_worker_built();
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scans `/proc` for `dgo-worker` processes (including zombies) whose parent
/// is this test process. Empty unless a backend leaked its children.
fn leaked_workers() -> Vec<i32> {
    let me = std::process::id() as i64;
    let mut leaked = Vec::new();
    for entry in std::fs::read_dir("/proc").expect("/proc") {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<i32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Format: pid (comm) state ppid ... — comm may contain spaces, so
        // split around the parentheses.
        let (Some(open), Some(close)) = (stat.find('('), stat.rfind(')')) else {
            continue;
        };
        if &stat[open + 1..close] != "dgo-worker" {
            continue;
        }
        let fields: Vec<&str> = stat[close + 2..].split_whitespace().collect();
        let ppid: i64 = fields.get(1).and_then(|f| f.parse().ok()).unwrap_or(-1);
        if ppid == me {
            leaked.push(pid);
        }
    }
    leaked
}

fn assert_no_leaked_workers(context: &str) {
    let leaked = leaked_workers();
    assert!(
        leaked.is_empty(),
        "{context}: leaked worker processes {leaked:?}"
    );
}

/// A seeded random all-to-all traffic pattern.
fn outbox_for(seed: u64, machines: usize, per_machine: usize) -> Vec<Vec<(usize, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..machines)
        .map(|_| {
            (0..per_machine)
                .map(|_| (rng.random_range(0..machines), rng.random::<u64>() % 10_000))
                .collect()
        })
        .collect()
}

/// Runs `exchanges` seeded exchanges on both the sequential reference and a
/// process backend configured by `build`, asserting bit-identical inboxes
/// and metrics, a live (non-degraded) worker pool, and no leaked children.
fn assert_chaos_parity(
    context: &str,
    machines: usize,
    exchanges: u64,
    build: impl FnOnce(ProcessBackend) -> ProcessBackend,
) {
    let config = ClusterConfig::new(machines, 1 << 16);
    let mut seq = SequentialBackend::new(config);
    let mut proc = build(ProcessBackend::new(config));
    for i in 0..exchanges {
        let outbox = outbox_for(1000 + i, machines, 24);
        let expected =
            ExecutionBackend::exchange(&mut seq, outbox.clone()).expect("sequential exchange");
        let got = proc.exchange(outbox).expect("recovered exchange");
        assert_eq!(got, expected, "{context}: inboxes differ at exchange {i}");
    }
    assert!(
        !proc.is_degraded(),
        "{context}: expected real worker processes (is dgo-worker built?)"
    );
    assert_eq!(
        proc.metrics(),
        seq.metrics(),
        "{context}: metrics differ after recovery"
    );
    drop(proc);
    assert_no_leaked_workers(context);
}

#[test]
fn recovers_from_kills_in_both_phases() {
    let _guard = lock();
    assert_chaos_parity("kills", 8, 4, |b| {
        b.with_workers(3)
            .with_fault_plan("kill@1:w0:route,kill@2:w2:fill,kill@4:w1")
    });
}

#[test]
fn recovers_from_corrupt_and_truncated_frames() {
    let _guard = lock();
    assert_chaos_parity("corrupt+trunc", 6, 3, |b| {
        b.with_workers(2)
            .with_fault_plan("corrupt@1:w0:route,trunc@2:w1,corrupt@3:w1:fill")
    });
}

#[test]
fn recovers_from_delay_within_deadline() {
    let _guard = lock();
    // The delay is far under the default 10 s deadline: the response simply
    // arrives late and no recovery machinery runs.
    assert_chaos_parity("short delay", 4, 2, |b| {
        b.with_workers(2).with_fault_plan("delay@1:w1:40")
    });
}

#[test]
fn timeout_kills_the_stuck_worker_and_replays() {
    let _guard = lock();
    // The worker stalls well past the 150 ms deadline; the supervisor kills
    // it, respawns, and replays. The fault budget (count 1) is spent at the
    // first send, so the replay runs clean.
    assert_chaos_parity("timeout respawn", 4, 2, |b| {
        b.with_workers(2)
            .with_timeout_ms(150)
            .with_fault_plan("delay@1:w1:5000")
    });
}

#[test]
fn seeded_chaos_storm_stays_bit_identical() {
    let _guard = lock();
    // A seeded storm: one fault of a random kind at a random worker/phase in
    // every exchange, all within the default retry budget.
    for storm_seed in [7u64, 99, 4242] {
        let mut rng = StdRng::seed_from_u64(storm_seed);
        let workers = 3;
        let kinds = ["kill", "delay", "trunc", "corrupt"];
        let phases = ["", ":route", ":fill"];
        let plan: Vec<String> = (1..=5)
            .map(|exchange| {
                let kind = kinds[rng.random_range(0..kinds.len())];
                let worker = rng.random_range(0..workers);
                let ms = if kind == "delay" { ":25" } else { "" };
                let phase = phases[rng.random_range(0..phases.len())];
                format!("{kind}@{exchange}:w{worker}{ms}{phase}")
            })
            .collect();
        assert_chaos_parity(&format!("storm {storm_seed}"), 9, 5, |b| {
            b.with_workers(workers).with_fault_plan(&plan.join(","))
        });
    }
}

#[test]
fn kill_storm_exhausts_retries_into_typed_error() {
    let _guard = lock();
    let config = ClusterConfig::new(4, 1 << 16);
    let mut proc = ProcessBackend::new(config)
        .with_workers(2)
        .with_retries(1)
        .with_fault_plan("kill@1:w0:route*5");
    let err = proc.exchange(outbox_for(1, 4, 8)).unwrap_err();
    assert_eq!(
        err,
        MpcError::WorkerCrashed {
            worker: 0,
            phase: "route"
        }
    );
    assert!(!proc.is_degraded());
    drop(proc);
    assert_no_leaked_workers("kill storm");
}

#[test]
fn persistent_stall_exhausts_retries_into_timeout_error() {
    let _guard = lock();
    let config = ClusterConfig::new(4, 1 << 16);
    let mut proc = ProcessBackend::new(config)
        .with_workers(2)
        .with_timeout_ms(100)
        .with_retries(1)
        .with_fault_plan("delay@1:w1:5000:fill*5");
    let err = proc.exchange(outbox_for(2, 4, 8)).unwrap_err();
    assert_eq!(
        err,
        MpcError::WorkerTimeout {
            worker: 1,
            phase: "fill",
            timeout_ms: 100
        }
    );
    drop(proc);
    assert_no_leaked_workers("stall storm");
}

#[test]
fn persistent_corruption_exhausts_retries_into_protocol_error() {
    let _guard = lock();
    let config = ClusterConfig::new(6, 1 << 16);
    let mut proc = ProcessBackend::new(config)
        .with_workers(3)
        .with_retries(2)
        .with_fault_plan("corrupt@1:w2:route*9");
    let err = proc.exchange(outbox_for(3, 6, 8)).unwrap_err();
    assert_eq!(
        err,
        MpcError::Protocol {
            worker: 2,
            detail: "frame checksum mismatch"
        }
    );
    drop(proc);
    assert_no_leaked_workers("corruption storm");
}

#[test]
fn degrades_to_in_process_when_binary_unavailable() {
    let _guard = lock();
    let config = ClusterConfig::new(5, 1 << 16);
    let mut seq = SequentialBackend::new(config);
    let mut proc = ProcessBackend::new(config)
        .with_workers(2)
        .with_worker_bin("/nonexistent/path/to/dgo-worker");
    for i in 0..3u64 {
        let outbox = outbox_for(50 + i, 5, 16);
        let expected =
            ExecutionBackend::exchange(&mut seq, outbox.clone()).expect("sequential exchange");
        let got = proc.exchange(outbox).expect("degraded exchange");
        assert_eq!(got, expected, "degraded: inboxes differ");
    }
    assert!(proc.is_degraded(), "missing binary must degrade, not fail");
    assert_eq!(proc.metrics(), seq.metrics(), "degraded: metrics differ");
    drop(proc);
    assert_no_leaked_workers("degraded");
}

#[test]
fn error_cases_leave_no_orphans_even_with_faults_pending() {
    let _guard = lock();
    // A worker dies for good at exchange 1 while other workers are healthy
    // and a later-exchange fault is still armed; the error must come back
    // typed and the teardown must reap every child.
    let config = ClusterConfig::new(9, 1 << 16);
    let mut proc = ProcessBackend::new(config)
        .with_workers(3)
        .with_retries(0)
        .with_fault_plan("kill@1:w1*9,kill@2:w2*9");
    let err = proc.exchange(outbox_for(4, 9, 12)).unwrap_err();
    assert!(
        matches!(err, MpcError::WorkerCrashed { worker: 1, .. }),
        "unexpected error: {err:?}"
    );
    drop(proc);
    assert_no_leaked_workers("error teardown");
}

#[test]
fn algorithm_chaos_color_and_layering_recover_bit_identically() {
    let _guard = lock();
    let g = gnm(350, 1050, 13);
    let params = Params::practical(g.num_vertices());

    // Layering: explicit construction, faults through the builder.
    let config = layering_config(&g, &params);
    let mut seq = SequentialBackend::new(config);
    let mut proc = ProcessBackend::new(config)
        .with_workers(2)
        .with_fault_plan("kill@2:w0,corrupt@4:w1:route,delay@3:w0:20:fill");
    let seq_out = complete_layering_in(&g, &params, &mut seq).expect("layering");
    let proc_out = complete_layering_in(&g, &params, &mut proc).expect("layering under chaos");
    assert!(!proc.is_degraded(), "layering: expected real workers");
    assert_eq!(seq_out.0, proc_out.0, "layering differs under chaos");
    assert_eq!(seq_out.1, proc_out.1, "layering stats differ under chaos");
    assert_eq!(seq.metrics(), proc.metrics(), "layering metrics differ");
    drop(proc);

    // Coloring: entry point constructs internally, faults through the
    // process-wide default plan.
    ProcessBackend::set_default_workers(Some(2));
    ProcessBackend::set_default_fault_plan(Some("kill@3:w1,trunc@5:w0"));
    let seq = color_on::<SequentialBackend>(&g, &params).expect("sequential color");
    let proc = color_on::<ProcessBackend>(&g, &params).expect("process color under chaos");
    ProcessBackend::set_default_fault_plan(None);
    ProcessBackend::set_default_workers(None);
    assert_eq!(seq.coloring, proc.coloring, "colorings differ under chaos");
    assert_eq!(seq.stats, proc.stats, "color stats differ under chaos");
    assert_eq!(
        seq.metrics, proc.metrics,
        "color metrics differ under chaos"
    );
    assert_no_leaked_workers("algorithm chaos");
}

/// Latency probe, not a pass/fail gate: prints the steady-state cost of a
/// clean exchange next to one that absorbs a worker kill (respawn + replay).
/// Run explicitly:
///
/// ```bash
/// cargo test --release --test process_fault -- --ignored --nocapture
/// ```
#[test]
#[ignore = "latency probe; run with --ignored --nocapture"]
fn recovery_latency_probe() {
    let _guard = lock();
    const ROUNDS: u32 = 20;
    let config = ClusterConfig::new(8, 1 << 16);
    let outbox = outbox_for(77, 8, 24);

    let mut clean = ProcessBackend::new(config).with_workers(3);
    clean.exchange(outbox.clone()).expect("warmup");
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        clean.exchange(outbox.clone()).expect("clean exchange");
    }
    let clean_per = start.elapsed() / ROUNDS;

    // One worker kill in every measured exchange: each absorbs a full
    // detect → respawn → replay cycle.
    let plan: Vec<String> = (2..=1 + ROUNDS).map(|i| format!("kill@{i}:w1")).collect();
    let mut faulty = ProcessBackend::new(config)
        .with_workers(3)
        .with_fault_plan(&plan.join(","));
    faulty.exchange(outbox.clone()).expect("warmup");
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        faulty.exchange(outbox.clone()).expect("recovered exchange");
    }
    let recovered_per = start.elapsed() / ROUNDS;
    assert!(!faulty.is_degraded());

    println!(
        "clean exchange: {clean_per:?}/op; exchange absorbing one worker kill \
         (respawn + replay): {recovered_per:?}/op"
    );
    drop(clean);
    drop(faulty);
    assert_no_leaked_workers("latency probe");
}

#[test]
fn orient_under_default_env_plan_path_is_clean() {
    let _guard = lock();
    // No plan set: the process backend with several workers runs orient
    // fault-free and bit-identical — the baseline the chaos runs diff
    // against.
    ProcessBackend::set_default_workers(Some(3));
    let g = gnm(300, 900, 29);
    let params = Params::practical(g.num_vertices());
    let seq = orient_on::<SequentialBackend>(&g, &params).expect("sequential orient");
    let proc = orient_on::<ProcessBackend>(&g, &params).expect("process orient");
    ProcessBackend::set_default_workers(None);
    assert_eq!(seq.orientation, proc.orientation);
    assert_eq!(seq.layering, proc.layering);
    assert_eq!(seq.metrics, proc.metrics);
    assert_no_leaked_workers("clean orient");
}
