//! MPC-model compliance: the algorithms must run inside the strongly
//! sublinear memory constraints — and the strict cluster must *reject*
//! configurations that cannot (failure injection).

#![allow(clippy::needless_range_loop)]

use dgo::core::{complete_layering, orient, Params};
use dgo::graph::generators::{gnm, star, Family};
use dgo::local::direct_peeling_mpc;
use dgo::mpc::{Cluster, ClusterConfig, MpcError};

#[test]
fn strict_metering_passes_for_all_families() {
    // complete_layering runs with strict = true internally: success is the
    // compliance certificate. Also sanity-check the reported peaks.
    for family in Family::ALL {
        let g = family.generate(1500, 5);
        let params = Params::practical(1500);
        let out = complete_layering(&g, &params).unwrap_or_else(|e| panic!("{family}: {e}"));
        let s = params.local_memory(g.num_vertices());
        assert!(
            out.metrics.peak_machine_memory <= s,
            "{family}: peak {} exceeds S = {s}",
            out.metrics.peak_machine_memory
        );
        assert!(
            out.metrics.max_round_load <= s,
            "{family}: round load over S"
        );
        assert_eq!(out.metrics.violations, 0, "{family}: violations recorded");
    }
}

#[test]
fn memory_scales_sublinearly() {
    // Peak machine memory must track n^delta, not n.
    let params = Params::practical(0);
    let small = complete_layering(&gnm(1000, 3000, 1), &params).unwrap();
    let large = complete_layering(&gnm(16000, 48000, 1), &params).unwrap();
    let ratio =
        large.metrics.peak_machine_memory as f64 / small.metrics.peak_machine_memory.max(1) as f64;
    // n grew 16x; sqrt-scaling predicts ~4x; allow up to 8x.
    assert!(ratio < 8.0, "memory scaled superlinearly: {ratio}");
}

#[test]
fn starved_cluster_rejects_with_capacity_error() {
    let g = gnm(800, 2400, 3);
    let cfg = ClusterConfig::new(2, 8); // absurdly small
    let err = direct_peeling_mpc(&g, 4, 0.5, cfg).unwrap_err();
    assert!(
        matches!(
            err,
            MpcError::CapacityExceeded { .. } | MpcError::MemoryExceeded { .. }
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn relaxed_cluster_records_instead_of_failing() {
    let g = star(500);
    let cfg = ClusterConfig::new(2, 16).relaxed();
    let r = direct_peeling_mpc(&g, 1, 0.5, cfg).unwrap();
    assert!(
        r.metrics.violations > 0,
        "starved relaxed cluster must log violations"
    );
    assert!(r.layering.is_complete());
}

#[test]
fn exchange_round_trip_preserves_messages() {
    let mut cluster = Cluster::new(ClusterConfig::new(5, 128));
    let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; 5];
    for src in 0..5usize {
        for dst in 0..5usize {
            outbox[src].push((dst, (src * 10 + dst) as u64));
        }
    }
    let inbox = cluster.exchange(outbox).unwrap();
    for (dst, received) in inbox.iter().enumerate() {
        assert_eq!(received.len(), 5);
        for (src, &msg) in received.iter().enumerate() {
            assert_eq!(msg, (src * 10 + dst) as u64);
        }
    }
}

#[test]
fn global_memory_stays_near_linear() {
    for family in [Family::SparseGnm, Family::Tree] {
        let g = family.generate(4000, 2);
        let params = Params::practical(4000);
        let r = orient(&g, &params).unwrap();
        let linear = g.num_edges() + g.num_vertices();
        // Õ(m + n): allow a generous constant+log factor over m+n, but make
        // sure it is far below n^2.
        assert!(
            r.metrics.peak_global_memory < 200 * linear,
            "{family}: global memory {} vs m+n = {linear}",
            r.metrics.peak_global_memory
        );
    }
}
