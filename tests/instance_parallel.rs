//! Instance-layer contract tests.
//!
//! The multi-instance execution layer (`dgo_mpc::instance`) promises two
//! things:
//!
//! 1. **Composition algebra** — [`Metrics::merge_parallel`] is the paper's
//!    parallel-composition semantics (max rounds, summed volume and memory),
//!    which must be commutative and associative with the all-zero metrics as
//!    identity, so composing a group of instances is order-independent.
//!    Property-tested on arbitrary metrics here.
//! 2. **Bit-identical concurrency** — the concurrent coreness guess ladder
//!    and the concurrent per-part orientation produce exactly the outputs of
//!    the sequential host loop at any `jobs` count, on either execution
//!    backend.

use dgo::core::{
    approximate_coreness_on, color_on, orient_on, partial_layering_bounded_on, Params,
};
use dgo::graph::generators::{clique, gnm, planted_dense};
use dgo::graph::{degeneracy, Graph};
use dgo::mpc::{ExecutionBackend, Metrics, ParallelBackend, SequentialBackend};
use proptest::prelude::*;

/// Arbitrary scalar metrics. `merge_parallel` composes the scalar counters
/// (the per-round log is a per-instance trace and is not merged), so the
/// algebra is stated on metrics with empty logs.
fn arb_metrics() -> impl Strategy<Value = Metrics> {
    (
        (0u64..1_000, 0u64..50),
        0usize..100_000,
        0usize..5_000,
        0usize..5_000,
        0usize..100_000,
    )
        .prop_map(
            |(
                (rounds, violations),
                total_comm_words,
                max_round_load,
                peak_machine,
                peak_global,
            )| {
                Metrics {
                    rounds,
                    total_comm_words,
                    max_round_load,
                    peak_machine_memory: peak_machine,
                    peak_global_memory: peak_global,
                    // Derived from the generated peaks so the max-merge
                    // algebra is exercised on this field too.
                    peak_tree_bytes: peak_machine / 2 + peak_global / 4,
                    // Derived from the generated volume so the summing-merge
                    // algebra is exercised on the bundle counters too.
                    bundle_wire_words: total_comm_words / 3,
                    bundle_flat_words: total_comm_words / 2,
                    violations,
                    round_log: Vec::new(),
                }
            },
        )
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut out = a.clone();
    out.merge_parallel(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_parallel_is_commutative(a in arb_metrics(), b in arb_metrics()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_parallel_is_associative(
        a in arb_metrics(),
        b in arb_metrics(),
        c in arb_metrics(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_parallel_has_zero_identity(a in arb_metrics()) {
        prop_assert_eq!(merged(&Metrics::new(), &a), a.clone());
        prop_assert_eq!(merged(&a, &Metrics::new()), a);
    }
}

/// The pre-refactor sequential guess ladder, reconstructed from public API:
/// one bounded certificate run per `(1+ε)^i` guess, estimates min-folded in
/// guess order, metrics parallel-merged in guess order. This is the
/// reference the concurrent `InstanceGroup` ladder must reproduce exactly.
fn sequential_reference_ladder(
    graph: &Graph,
    eps: f64,
    params: &Params,
) -> (Vec<u32>, Vec<usize>, Metrics) {
    let n = graph.num_vertices();
    let max_core = degeneracy(graph).value.max(1);
    let mut guesses: Vec<usize> = Vec::new();
    let mut g = 1.0f64;
    loop {
        let guess = g.ceil() as usize;
        if guesses.last() != Some(&guess) {
            guesses.push(guess);
        }
        if guess >= max_core {
            break;
        }
        g *= 1.0 + eps;
    }

    let mut estimate = vec![max_core as u32; n];
    let mut metrics = Metrics::new();
    for &guess in &guesses {
        let mut run_params = params.clone();
        run_params.lambda_hint = guess;
        let outcome = partial_layering_bounded_on::<SequentialBackend>(graph, &run_params, 8)
            .expect("bounded layering succeeds");
        if outcome.layering.num_assigned() > 0 {
            let witness = outcome
                .layering
                .out_degree_bound(graph)
                .expect("bound computes")
                .max(1) as u32;
            for (v, e) in estimate.iter_mut().enumerate() {
                if outcome.layering.is_assigned(v) {
                    *e = (*e).min(witness);
                }
            }
        }
        metrics.merge_parallel(&outcome.metrics);
    }
    (estimate, guesses, metrics)
}

fn assert_ladder_matches_reference<B: ExecutionBackend + Send>(graph: &Graph, label: &str) {
    let params = Params::practical(graph.num_vertices());
    let (ref_estimate, ref_guesses, ref_metrics) = sequential_reference_ladder(graph, 0.5, &params);
    for jobs in [1usize, 2, 8, 0] {
        let context = format!("{label}/jobs{jobs}");
        let r = approximate_coreness_on::<B>(graph, 0.5, &params.clone().with_jobs(jobs))
            .expect("coreness succeeds");
        assert_eq!(r.estimate, ref_estimate, "{context}: estimates differ");
        assert_eq!(r.guesses, ref_guesses, "{context}: guess ladders differ");
        assert_eq!(r.metrics, ref_metrics, "{context}: merged metrics differ");
    }
}

#[test]
fn concurrent_ladder_bit_identical_to_sequential_loop() {
    for (label, g) in [
        ("gnm", gnm(400, 1600, 7)),
        ("planted_dense", planted_dense(600, 1200, 25, 3)),
    ] {
        assert_ladder_matches_reference::<SequentialBackend>(&g, label);
    }
}

#[test]
fn concurrent_ladder_bit_identical_on_parallel_backend() {
    // Instance-level concurrency composes with the rayon exchange backend
    // without disturbing outputs.
    let g = gnm(500, 2000, 11);
    assert_ladder_matches_reference::<ParallelBackend>(&g, "gnm/parallel-backend");
}

#[test]
fn concurrent_coloring_parts_bit_identical_across_jobs() {
    // K80 forces the Lemma 2.2 vertex-partition path, so the per-part
    // coloring pipelines fan across host threads.
    let g = clique(80);
    let mut params = Params::practical(80);
    params.exact_arboricity_threshold = 100;

    let baseline = color_on::<SequentialBackend>(&g, &params).expect("color succeeds");
    assert!(
        baseline.stats.parts > 1,
        "expected the vertex-partition path"
    );
    for jobs in [2usize, 8, 0] {
        let r = color_on::<SequentialBackend>(&g, &params.clone().with_jobs(jobs))
            .expect("color succeeds");
        assert_eq!(
            r.coloring, baseline.coloring,
            "jobs{jobs}: colorings differ"
        );
        assert_eq!(r.metrics, baseline.metrics, "jobs{jobs}: metrics differ");
        assert_eq!(r.stats, baseline.stats, "jobs{jobs}: stats differ");
    }
}

#[test]
fn concurrent_orientation_parts_bit_identical_across_jobs() {
    // K64 forces the Theorem 1.1 edge-partition path (λ = 32 > log₂ 64), so
    // the per-part layerings run as a host-parallel instance group.
    let g = clique(64);
    let mut params = Params::practical(64);
    params.exact_arboricity_threshold = 100;

    let baseline = orient_on::<SequentialBackend>(&g, &params).expect("orient succeeds");
    assert!(baseline.parts > 1, "expected the edge-partition path");
    for jobs in [2usize, 8, 0] {
        let r = orient_on::<SequentialBackend>(&g, &params.clone().with_jobs(jobs))
            .expect("orient succeeds");
        assert_eq!(
            r.orientation, baseline.orientation,
            "jobs{jobs}: orientations differ"
        );
        assert_eq!(r.metrics, baseline.metrics, "jobs{jobs}: metrics differ");
        assert_eq!(r.stats, baseline.stats, "jobs{jobs}: stats differ");
    }
}
