//! Shared helpers for the integration suites.

#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::Once;

/// Guarantees `dgo-worker` (the multi-process backend's shard worker binary)
/// exists next to this test binary's profile directory, building it once if
/// absent.
///
/// `cargo build` emits every bin target, but `cargo test` produces only the
/// hashed per-target artifacts under `deps/` — the unhashed
/// `target/<profile>/dgo-worker` the backend discovers may not exist when
/// the test suite is invoked standalone (e.g. `cargo test --release --test
/// process_fault` on a clean tree). Building on demand keeps the process
/// suites meaningful (never silently degraded) in every invocation order.
pub fn ensure_worker_built() {
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        if worker_binary_present() {
            return;
        }
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-p", "dgo-mpc", "--bin", "dgo-worker"]);
        if !cfg!(debug_assertions) {
            cmd.arg("--release");
        }
        // The manifest dir of this test package is inside the workspace, so
        // cargo resolves the same target directory the tests run from.
        cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => panic!("building dgo-worker failed with {status}"),
            Err(e) => panic!("could not invoke cargo to build dgo-worker: {e}"),
        }
        assert!(
            worker_binary_present(),
            "dgo-worker still missing after a successful build"
        );
    });
}

/// Whether the backend's discovery path would find the worker binary.
fn worker_binary_present() -> bool {
    if std::env::var_os("DGO_WORKER_BIN").is_some() {
        return true;
    }
    let Ok(exe) = std::env::current_exe() else {
        return false;
    };
    let Some(dir) = exe.parent() else {
        return false;
    };
    let mut candidates: Vec<PathBuf> = vec![dir.join("dgo-worker")];
    if let Some(parent) = dir.parent() {
        candidates.push(parent.join("dgo-worker"));
    }
    candidates.iter().any(|c| c.is_file())
}
