//! Density-based clustering with H-partition layers.
//!
//! The paper builds on [GLM19] ("Improved parallel algorithms for
//! density-based network clustering"): low-outdegree orientations and layer
//! assignments reveal *dense cores*. Vertices in high layers survive many
//! peeling generations — they sit inside dense regions. This example plants
//! a dense community inside a sparse background and shows that the top
//! layers of the Theorem 1.1 layering recover it.
//!
//! ```bash
//! cargo run --release --example dense_subgraph
//! ```

use dgo::core::{complete_layering, Params};
use dgo::graph::generators::planted_dense;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5_000;
    let core_size = 40; // vertices 0..40 form a planted near-clique
    let g = planted_dense(n, 2 * n, core_size, 13);
    let params = Params::practical(n);

    println!(
        "graph: n = {n}, m = {}, planted core = {core_size} vertices",
        g.num_edges()
    );

    let out = complete_layering(&g, &params)?;
    let layering = &out.layering;
    let top = layering.max_layer().unwrap();
    println!("layers: {top}, MPC rounds: {}", out.metrics.rounds);

    // Rank vertices by layer (descending): the planted core should dominate
    // the highest layers.
    let mut by_layer: Vec<usize> = (0..n).collect();
    by_layer.sort_unstable_by_key(|&v| std::cmp::Reverse(layering.layer(v)));
    let candidates = &by_layer[..core_size];
    let hits = candidates.iter().filter(|&&v| v < core_size).count();
    let precision = hits as f64 / core_size as f64;
    println!(
        "top-{core_size} vertices by layer contain {hits} of the planted core \
         (precision {precision:.2})"
    );

    // Layer histogram of core vs background.
    let core_avg: f64 = (0..core_size)
        .map(|v| layering.layer(v) as f64)
        .sum::<f64>()
        / core_size as f64;
    let bg_avg: f64 = (core_size..n)
        .map(|v| layering.layer(v) as f64)
        .sum::<f64>()
        / (n - core_size) as f64;
    println!("average layer — core: {core_avg:.1}, background: {bg_avg:.1}");
    assert!(
        core_avg > bg_avg,
        "the planted dense core must sit in higher layers than the background"
    );
    println!("dense community successfully separated by layer assignment");
    Ok(())
}
