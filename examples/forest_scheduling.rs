//! Forests (`λ = 1`): the special case the paper generalizes.
//!
//! [GLM+23] solved `O(log log n)`-round MPC orientation *only for forests*;
//! the paper's contribution is handling every λ. This example runs the
//! general machinery on the λ = 1 case — a dependency forest of build
//! targets — and uses the orientation for scheduling: orienting each edge
//! toward the higher layer gives every node at most `O(log log n)` outgoing
//! dependencies, and coloring groups targets into conflict-free build waves.
//!
//! ```bash
//! cargo run --release --example forest_scheduling
//! ```

use dgo::core::{color, orient, Params};
use dgo::graph::generators::random_forest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 30_000;
    let g = random_forest(n, 50, 21); // 50 independent dependency trees
    let params = Params::practical(n);

    println!(
        "dependency forest: n = {}, m = {}, components = {}",
        g.num_vertices(),
        g.num_edges(),
        g.connected_components()
    );
    assert!(g.is_forest());

    let oriented = orient(&g, &params)?;
    oriented.orientation.validate(&g)?;
    println!(
        "\nmax outgoing dependencies: {}",
        oriented.orientation.max_out_degree()
    );
    println!("(paper bound: O(λ log log n) with λ = 1 → single digits)");
    println!("MPC rounds: {}", oriented.metrics.rounds);

    let colored = color(&g, &params)?;
    colored.coloring.validate(&g)?;
    println!("\nbuild waves (colors): {}", colored.coloring.num_colors());
    println!("(forests are 2-colorable offline; the distributed algorithm pays a");
    println!(" small constant factor for poly(log log n) rounds — [GLM+23] get 3)");

    // Verify the waves are usable: no edge within a wave.
    for (u, v) in g.edges() {
        assert_ne!(colored.coloring.color(u), colored.coloring.color(v));
    }
    println!("\nall build waves verified conflict-free");
    Ok(())
}
