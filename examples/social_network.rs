//! Social-network coloring: heavy-tailed degrees, tiny arboricity.
//!
//! Preferential-attachment graphs model social networks: a few celebrity
//! hubs have enormous degree, but the graph is globally sparse
//! (`λ ≈ attachment rate`). A `Δ+1`-based coloring would budget hundreds of
//! colors for the hubs; the paper's density-dependent coloring
//! (`O(λ log log n)` colors) ignores Δ entirely — exactly the motivation in
//! the paper's §1.5 ("the ∆-dependent coloring can be too relaxed ... in a
//! star graph, ∆ = Θ(n) and λ = 1").
//!
//! Scenario: color user accounts so that no two adjacent accounts share a
//! color, then use the color classes as conflict-free maintenance windows —
//! adjacent accounts are never migrated simultaneously.
//!
//! ```bash
//! cargo run --release --example social_network
//! ```

use dgo::core::{color, estimate_lambda, Params};
use dgo::graph::generators::barabasi_albert;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 20_000;
    let g = barabasi_albert(n, 4, 7);
    let params = Params::practical(n);

    println!(
        "social graph: n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );
    println!("hub (max) degree Δ   : {}", g.max_degree());
    println!("arboricity estimate  : {}", estimate_lambda(&g, &params));

    let result = color(&g, &params)?;
    result.coloring.validate(&g)?;

    let colors = result.coloring.num_colors();
    println!("\nmaintenance windows needed (colors): {colors}");
    println!(
        "Δ+1 coloring would have budgeted    : {}",
        g.max_degree() + 1
    );
    println!(
        "savings: {:.1}x fewer windows",
        (g.max_degree() + 1) as f64 / colors as f64
    );
    println!("MPC rounds: {}", result.metrics.rounds);

    // Window sizes: how many accounts migrate per window.
    let mut window_sizes = std::collections::HashMap::new();
    for v in 0..g.num_vertices() {
        *window_sizes
            .entry(result.coloring.color(v))
            .or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = window_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest window: {} accounts; smallest: {}",
        sizes[0],
        sizes[sizes.len() - 1]
    );
    Ok(())
}
