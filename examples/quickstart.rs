//! Quickstart: orient and color a random graph, print every statistic the
//! library reports.
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --backend sharded:4
//! ```
//!
//! `--backend <sequential|parallel|sharded[:K]>` picks the execution
//! backend (default: sequential). Every backend prints identical numbers —
//! the choice is purely a host-performance decision.

use dgo::core::{color_on, estimate_lambda, orient_on, Params};
use dgo::graph::generators::gnm;
use dgo::mpc::{dispatch_backend, BackendKind, ExecutionBackend};

/// Minimal `--backend` parsing (the experiment binaries share the same flag
/// through `dgo-bench`; examples depend only on the umbrella crate).
fn backend_from_args() -> BackendKind {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or_default()
}

fn run<B: ExecutionBackend + Send>() -> Result<(), Box<dyn std::error::Error>> {
    // A random graph with n = 10_000 vertices and average degree 8.
    let n = 10_000;
    let g = gnm(n, 4 * n, 42);
    let params = Params::practical(n);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    println!("arboricity estimate λ̂ = {}", estimate_lambda(&g, &params));

    // --- Theorem 1.1: low-outdegree orientation. ---
    let oriented = orient_on::<B>(&g, &params)?;
    oriented.orientation.validate(&g)?;
    println!("\n== orientation (Theorem 1.1) ==");
    println!(
        "max outdegree        : {}",
        oriented.orientation.max_out_degree()
    );
    println!("MPC rounds           : {}", oriented.metrics.rounds);
    println!(
        "peak machine memory  : {} words",
        oriented.metrics.peak_machine_memory
    );
    println!(
        "total communication  : {} words",
        oriented.metrics.total_comm_words
    );
    if let Some(layering) = &oriented.layering {
        println!(
            "layers               : {}",
            layering.max_layer().unwrap_or(0)
        );
    }
    for stats in &oriented.stats {
        println!(
            "k = {}, stages = {}, initial peel rounds = {}, fallbacks = {}",
            stats.k, stats.stages, stats.initial_peel_rounds, stats.fallback_rounds
        );
    }

    // --- Theorem 1.2: density-dependent coloring. ---
    let colored = color_on::<B>(&g, &params)?;
    colored.coloring.validate(&g)?;
    println!("\n== coloring (Theorem 1.2) ==");
    println!("colors used          : {}", colored.coloring.num_colors());
    println!("palette budget       : {}", colored.stats.palette);
    println!("Δ+1 reference        : {}", g.max_degree() + 1);
    println!("MPC rounds           : {}", colored.metrics.rounds);
    println!(
        "simulated LOCAL rnds : {}",
        colored.stats.simulated_local_rounds
    );

    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = backend_from_args();
    println!("backend: {kind}");
    dispatch_backend!(kind, B => { run::<B>() })
}
