//! Quickstart: orient and color a random graph, print every statistic the
//! library reports.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dgo::core::{color, estimate_lambda, orient, Params};
use dgo::graph::generators::gnm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random graph with n = 10_000 vertices and average degree 8.
    let n = 10_000;
    let g = gnm(n, 4 * n, 42);
    let params = Params::practical(n);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    println!("arboricity estimate λ̂ = {}", estimate_lambda(&g, &params));

    // --- Theorem 1.1: low-outdegree orientation. ---
    let oriented = orient(&g, &params)?;
    oriented.orientation.validate(&g)?;
    println!("\n== orientation (Theorem 1.1) ==");
    println!(
        "max outdegree        : {}",
        oriented.orientation.max_out_degree()
    );
    println!("MPC rounds           : {}", oriented.metrics.rounds);
    println!(
        "peak machine memory  : {} words",
        oriented.metrics.peak_machine_memory
    );
    println!(
        "total communication  : {} words",
        oriented.metrics.total_comm_words
    );
    if let Some(layering) = &oriented.layering {
        println!(
            "layers               : {}",
            layering.max_layer().unwrap_or(0)
        );
    }
    for stats in &oriented.stats {
        println!(
            "k = {}, stages = {}, initial peel rounds = {}, fallbacks = {}",
            stats.k, stats.stages, stats.initial_peel_rounds, stats.fallback_rounds
        );
    }

    // --- Theorem 1.2: density-dependent coloring. ---
    let colored = color(&g, &params)?;
    colored.coloring.validate(&g)?;
    println!("\n== coloring (Theorem 1.2) ==");
    println!("colors used          : {}", colored.coloring.num_colors());
    println!("palette budget       : {}", colored.stats.palette);
    println!("Δ+1 reference        : {}", g.max_degree() + 1);
    println!("MPC rounds           : {}", colored.metrics.rounds);
    println!(
        "simulated LOCAL rnds : {}",
        colored.stats.simulated_local_rounds
    );

    Ok(())
}
