//! Coreness decomposition for density-based network clustering.
//!
//! The paper's footnote 2: [GLM19] state their MPC result for *coreness
//! decomposition*, obtained by running the density-dependent layering for
//! every `(1+ε)^i` guess in parallel. `approximate_coreness` reproduces
//! that application: each guess's partial layering certifies an upper bound
//! on the coreness of every vertex it assigns, and the ladder refines the
//! per-vertex estimate down to `O(coreness · log log n)`.
//!
//! Scenario: tier a service graph by connectivity resilience — high-coreness
//! vertices survive cascading removals of weakly connected nodes.
//!
//! ```bash
//! cargo run --release --example coreness_clustering
//! ```

#![allow(clippy::needless_range_loop)]

use dgo::core::{approximate_coreness, Params};
use dgo::graph::coreness;
use dgo::graph::generators::planted_dense;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8_000;
    let core_size = 50;
    let g = planted_dense(n, 2 * n, core_size, 31);
    // jobs = 0: fan the guess ladder across every host core — estimates and
    // metrics are bit-identical to the sequential loop, only faster.
    let params = Params::practical(n).with_jobs(0);

    println!(
        "service graph: n = {n}, m = {}, planted {core_size}-clique core",
        g.num_edges()
    );

    let approx = approximate_coreness(&g, 0.5, &params)?;
    println!(
        "guess ladder: {:?} ({} parallel layering runs, {} MPC rounds)",
        approx.guesses,
        approx.guesses.len(),
        approx.metrics.rounds
    );

    // Compare against exact coreness.
    let exact = coreness(&g);
    let mut worst_ratio = 0.0f64;
    let mut sound = true;
    for v in 0..n {
        if approx.estimate[v] < exact[v] {
            sound = false;
        }
        let ratio = approx.estimate[v] as f64 / exact[v].max(1) as f64;
        worst_ratio = worst_ratio.max(ratio);
    }
    println!("estimates sound (≥ exact): {sound}");
    println!("worst over-approximation factor: {worst_ratio:.1}x (budget: O(log log n))");
    assert!(sound);

    // Tiering: split vertices into resilience tiers by estimated coreness.
    let max_est = approx.estimate.iter().copied().max().unwrap();
    let tier_of = |e: u32| -> usize {
        if e as f64 >= max_est as f64 * 0.5 {
            0 // resilient core
        } else if e > 4 {
            1 // middle tier
        } else {
            2 // periphery
        }
    };
    let mut tier_sizes = [0usize; 3];
    for v in 0..n {
        tier_sizes[tier_of(approx.estimate[v])] += 1;
    }
    println!(
        "\nresilience tiers: core = {}, middle = {}, periphery = {}",
        tier_sizes[0], tier_sizes[1], tier_sizes[2]
    );

    // The planted clique must land in tier 0.
    let planted_in_core = (0..core_size)
        .filter(|&v| tier_of(approx.estimate[v]) == 0)
        .count();
    println!("planted core captured in tier 0: {planted_in_core}/{core_size}");
    assert!(
        planted_in_core * 10 >= core_size * 9,
        "tiering must capture the planted core"
    );
    Ok(())
}
